(** Multi-scalar multiplication. MSMs dominate proving cost in halo2 (the
    paper's cost model, §7.4, counts them explicitly), so we implement the
    bucket (Pippenger) method with a size-dependent window — and, on top
    of it, a batch-affine accumulation path: buckets live in affine
    coordinates, every scheduling round folds its pending points into the
    buckets with a single batched field inversion, scalars are recoded
    into signed digits to halve the bucket count, and curves with an
    efficient endomorphism (Pallas) additionally split every scalar into
    two half-width halves (GLV), halving the window passes. The original
    Jacobian-bucket implementation is kept as [pippenger_jacobian] — it
    is the differential reference for tests and the before/after line in
    the kernel benchmarks. *)

module Make (G : Group_intf.S) = struct
  module Pool = Zkml_util.Pool

  let naive points scalars =
    (* chunked sum; G.add is associative, and partial sums combine in
       ascending chunk order with a job-count-independent chunk size, so
       the result is identical at any width *)
    Pool.parallel_reduce ~chunk:64 ~seq_below:128 (Array.length points)
      ~init:G.zero
      ~map:(fun lo hi ->
        let acc = ref G.zero in
        for i = lo to hi - 1 do
          acc := G.add !acc (G.mul points.(i) scalars.(i))
        done;
        !acc)
      ~combine:G.add

  let scalar_bits = 64 * Array.length G.Scalar.modulus_limbs

  (* Window size for the Jacobian reference path (the seed tuning). *)
  let window_size n =
    if n < 8 then 2
    else if n < 32 then 4
    else if n < 256 then 6
    else if n < 4096 then 9
    else 12

  (* Window size for the batch-affine path as a function of the item
     count (2x the point count when GLV is active), retuned against
     measured batch-affine bucket costs at ZKML_JOBS=1 (make bench-msm;
     the chosen table is recorded in BENCH_PR7.json). Signed digits mean
     2^(c-1) buckets, so the affine path sustains a wider window for the
     same bucket-array cost; larger windows also amortize the per-round
     batch inversion over more points. *)
  let window_size_affine n =
    if n < 1024 then 8
    else if n < 8192 then 10
    else if n < 32768 then 12
    else 13

  (* Extract c bits of the canonical scalar starting at bit position pos. *)
  let digit limbs pos c =
    let limb_idx = pos / 64 and off = pos mod 64 in
    if limb_idx >= Array.length limbs then 0
    else begin
      let lo = Int64.shift_right_logical limbs.(limb_idx) off in
      let v =
        if off + c <= 64 || limb_idx + 1 >= Array.length limbs then lo
        else
          Int64.logor lo (Int64.shift_left limbs.(limb_idx + 1) (64 - off))
      in
      Int64.to_int (Int64.logand v (Int64.of_int ((1 lsl c) - 1)))
    end

  (* Signed-digit (wNAF-style) recoding: base-2^c digits folded into
     [-2^(c-1), 2^(c-1)] with a carry, so a window only needs 2^(c-1)
     buckets (negative digits add the negated point). One extra window
     absorbs the final carry. *)
  let signed_digits limbs nbits c =
    let nwin = ((nbits + c - 1) / c) + 1 in
    let digits = Array.make nwin 0 in
    let half = 1 lsl (c - 1) in
    let carry = ref 0 in
    for w = 0 to nwin - 1 do
      let d = digit limbs (w * c) c + !carry in
      if d > half then begin
        digits.(w) <- d - (1 lsl c);
        carry := 1
      end
      else begin
        digits.(w) <- d;
        carry := 0
      end
    done;
    digits

  (* The seed implementation: Jacobian bucket accumulation, unsigned
     digits. Kept as the differential reference and for very small
     inputs, where the affine path's field inversions dominate. *)
  let pippenger_jacobian points scalars =
    let n = Array.length points in
    assert (Array.length scalars = n);
    if n = 0 then G.zero
    else begin
      let c = window_size n in
      let limbs = Array.map G.Scalar.to_canonical_limbs scalars in
      let windows = (scalar_bits + c - 1) / c in
      (* windows are independent, so their bucket accumulation runs
         concurrently; each window's inner loops are exactly the
         sequential ones, so sums.(w) is representation-identical at any
         job count. Below ~256 points a window is too little work to
         amortize the region dispatch, so small MSMs stay sequential. *)
      let sums = Array.make windows G.zero in
      let seq_below = if n >= 256 then 2 else max_int in
      Pool.parallel_for ~chunk:1 ~seq_below windows (fun w ->
          let buckets = Array.make ((1 lsl c) - 1) G.zero in
          for i = 0 to n - 1 do
            let d = digit limbs.(i) (w * c) c in
            if d <> 0 then buckets.(d - 1) <- G.add buckets.(d - 1) points.(i)
          done;
          let running = ref G.zero and sum = ref G.zero in
          for b = Array.length buckets - 1 downto 0 do
            running := G.add !running buckets.(b);
            sum := G.add !sum !running
          done;
          sums.(w) <- !sum);
      if Zkml_obs.Obs.enabled () then begin
        (* one direct accumulation pass per window; no inversions and no
           collision deferrals on the Jacobian path *)
        Zkml_obs.Obs.count "msm.bucket_rounds" windows;
        Zkml_obs.Obs.count "msm.batch_inv_calls" 0;
        Zkml_obs.Obs.count "msm.collision_queue" 0
      end;
      (* the doubling combine stays sequential: acc = 2^c * acc + sum_w,
         highest window first — the same op sequence as before *)
      let acc = ref G.zero in
      for w = windows - 1 downto 0 do
        for _ = 1 to c do
          acc := G.double !acc
        done;
        acc := G.add !acc sums.(w)
      done;
      !acc
    end

  (* Batch-affine bucket accumulation over recoded scalars.

     [aff] are the points in affine cells, [digitss.(i).(w)] the signed
     digit of scalar i in window w, [nwin] the window count, [c] the
     window width. Per window, points are folded into 2^(c-1) affine
     buckets in scheduling rounds: a round claims at most one pending
     addition per bucket (later hits on the same bucket go to the
     collision queue for the next round, preserving arrival order) and
     performs all claimed additions with one batched inversion via
     [G.Affine.batch_add]. Scheduling is per-window sequential and
     windows don't share state, so the result is identical at any job
     count. Returns the per-window sums and accumulated scheduler
     statistics (rounds, batch-inversion calls, collision-queue
     traffic). *)
  let affine_windows aff digitss nwin c =
    let n = Array.length aff in
    let half = 1 lsl (c - 1) in
    let sums = Array.make nwin G.zero in
    let stats = Array.init nwin (fun _ -> Array.make 3 0) in
    let neg_cache = Array.map G.Affine.neg aff in
    let seq_below = if n >= 256 then 2 else max_int in
    Pool.parallel_for ~chunk:1 ~seq_below nwin (fun w ->
        let buckets = Array.init half (fun _ -> G.Affine.infinity ()) in
        (* pending additions: bucket index + source cell; double-buffered
           so a round's collisions become the next round's queue without
           reallocation *)
        let dummy = G.Affine.infinity () in
        let pend_b = Array.make n 0 and pend_p = Array.make n dummy in
        let next_b = Array.make n 0 and next_p = Array.make n dummy in
        let m = ref 0 in
        for i = 0 to n - 1 do
          let d = digitss.(i).(w) in
          if d <> 0 && not (G.Affine.is_infinity aff.(i)) then begin
            if d > 0 then begin
              pend_b.(!m) <- d - 1;
              pend_p.(!m) <- aff.(i)
            end
            else begin
              pend_b.(!m) <- -d - 1;
              pend_p.(!m) <- neg_cache.(i)
            end;
            incr m
          end
        done;
        let sched_d = Array.make (max 1 !m) 0 in
        let sched_s = Array.make (max 1 !m) dummy in
        let claimed = Array.make half (-1) in
        let pend_b = ref pend_b and pend_p = ref pend_p in
        let next_b = ref next_b and next_p = ref next_p in
        let round = ref 0 in
        let st = stats.(w) in
        while !m > 0 do
          let k = ref 0 and m' = ref 0 in
          for i = 0 to !m - 1 do
            let b = !pend_b.(i) in
            if claimed.(b) <> !round then begin
              claimed.(b) <- !round;
              sched_d.(!k) <- b;
              sched_s.(!k) <- !pend_p.(i);
              incr k
            end
            else begin
              !next_b.(!m') <- b;
              !next_p.(!m') <- !pend_p.(i);
              incr m'
            end
          done;
          G.Affine.batch_add buckets ~dst:sched_d ~src:sched_s ~len:!k;
          st.(0) <- st.(0) + 1;
          if !k > 0 then st.(1) <- st.(1) + 1;
          st.(2) <- st.(2) + !m';
          let tb = !pend_b and tp = !pend_p in
          pend_b := !next_b;
          pend_p := !next_p;
          next_b := tb;
          next_p := tp;
          m := !m';
          incr round
        done;
        (* bucket reduction: sum_b (b+1) * bucket_b via the running-sum
           identity, highest bucket first *)
        let running = ref G.zero and sum = ref G.zero in
        for b = half - 1 downto 0 do
          if not (G.Affine.is_infinity buckets.(b)) then
            running := G.add !running (G.Affine.to_group buckets.(b));
          sum := G.add !sum !running
        done;
        sums.(w) <- !sum);
    (sums, stats)

  let combine_windows sums c =
    let acc = ref G.zero in
    for w = Array.length sums - 1 downto 0 do
      for _ = 1 to c do
        acc := G.double !acc
      done;
      acc := G.add !acc sums.(w)
    done;
    !acc

  let emit_stats stats =
    if Zkml_obs.Obs.enabled () then begin
      let rounds = ref 0 and invs = ref 0 and coll = ref 0 in
      Array.iter
        (fun st ->
          rounds := !rounds + st.(0);
          invs := !invs + st.(1);
          coll := !coll + st.(2))
        stats;
      Zkml_obs.Obs.count "msm.bucket_rounds" !rounds;
      Zkml_obs.Obs.count "msm.batch_inv_calls" !invs;
      Zkml_obs.Obs.count "msm.collision_queue" !coll
    end

  (* Below this point count the Jacobian bucket path wins: the affine
     scheduler's per-round batch inversions and queue management are
     fixed costs that need enough points per bucket to amortize
     (measured crossover at ZKML_JOBS=1, see BENCH_PR7.json). *)
  let affine_threshold = 64

  (* Batch-affine Pippenger over plain (unsplit) scalars. [?c] overrides
     the window width (used by the window-tuning benchmark). *)
  let pippenger_affine ?c points scalars =
    let n = Array.length points in
    let c = match c with Some c -> c | None -> window_size_affine n in
    let nwin = ((scalar_bits + c - 1) / c) + 1 in
    let digitss =
      Array.map
        (fun s -> signed_digits (G.Scalar.to_canonical_limbs s) scalar_bits c)
        scalars
    in
    let aff = G.Affine.batch_of_group points in
    let sums, stats = affine_windows aff digitss nwin c in
    emit_stats stats;
    combine_windows sums c

  (* Batch-affine Pippenger with GLV-split scalars: 2n half-width
     pairs (±k1, P) and (±k2, phi P). *)
  let pippenger_glv ?c phi split points scalars =
    let n = Array.length points in
    let pts2 = Array.make (2 * n) G.zero in
    let limbs2 = Array.make (2 * n) [||] in
    let maxbits = ref 1 in
    for i = 0 to n - 1 do
      let s = split scalars.(i) in
      let p = points.(i) in
      pts2.(2 * i) <- (if s.Group_intf.k1_neg then G.neg p else p);
      limbs2.(2 * i) <- s.Group_intf.k1;
      let q = phi p in
      pts2.((2 * i) + 1) <- (if s.Group_intf.k2_neg then G.neg q else q);
      limbs2.((2 * i) + 1) <- s.Group_intf.k2;
      maxbits := max !maxbits (Zkml_ff.Limbs.bits s.Group_intf.k1);
      maxbits := max !maxbits (Zkml_ff.Limbs.bits s.Group_intf.k2)
    done;
    let c = match c with Some c -> c | None -> window_size_affine (2 * n) in
    let nwin = ((!maxbits + c - 1) / c) + 1 in
    let digitss = Array.map (fun l -> signed_digits l !maxbits c) limbs2 in
    let aff = G.Affine.batch_of_group pts2 in
    let sums, stats = affine_windows aff digitss nwin c in
    emit_stats stats;
    combine_windows sums c

  (* The batch-affine path exists to amortize the field inversions of
     affine curve addition; a group whose [endo] is [None] is either the
     simulated one (adds are single field adds — nothing to amortize,
     the scheduler is pure overhead) or a curve without a usable
     endomorphism, so the affine path is gated on [endo] rather than on
     a separate capability flag. *)
  let pippenger points scalars =
    let n = Array.length points in
    assert (Array.length scalars = n);
    if n = 0 then G.zero
    else
      match G.endo with
      | Some (phi, split) when n >= affine_threshold ->
          pippenger_glv phi split points scalars
      | _ -> pippenger_jacobian points scalars

  (* Window-table tuning hook for bench/main.ml and the differential
     tests: run the batch-affine path at an explicit window width,
     with GLV when available. *)
  let pippenger_affine_with_window ~c points scalars =
    if Array.length points = 0 then G.zero
    else
      match G.endo with
      | Some (phi, split) when Array.length points >= affine_threshold ->
          pippenger_glv ~c phi split points scalars
      | _ -> pippenger_affine ~c points scalars

  let msm_core points scalars =
    if Array.length points <= 4 then naive points scalars
    else pippenger points scalars

  let msm_hist =
    Zkml_obs.Metrics.histogram
      ~labels:[ ("phase", "msm") ]
      ~help:"Per-phase wall time of the proving/verifying pipeline"
      "zkml_phase_seconds"

  let msm points scalars =
    Zkml_obs.Metrics.time msm_hist @@ fun () ->
    if Zkml_obs.Obs.enabled () then
      Zkml_obs.Obs.Span.with_ ~name:"msm" (fun () ->
          Zkml_obs.Obs.count "msm.points" (Array.length points);
          msm_core points scalars)
    else msm_core points scalars
end
