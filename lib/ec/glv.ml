(* GLV scalar decomposition for curves with a degree-2 endomorphism.

   Given the scalar-field cube root of unity lambda (so the curve map
   phi satisfies phi(P) = lambda * P), every scalar k splits as
   k = k1 + lambda * k2 (mod n) with |k1|, |k2| ~ sqrt(n), halving the
   number of Pippenger window passes at the cost of doubling the point
   count — a large win because bucket work is linear in windows but the
   doubled points share one bucket array.

   Everything derived here is computed from the modulus and lambda at
   first use, in the spirit of limb4.ml's derived Montgomery constants:

   - the short lattice vectors v1 = (a1, b1), v2 = (a2, b2) with
     a_i + b_i * lambda = 0 (mod n) come from the extended Euclidean
     algorithm on (n, lambda), stopped at the first remainder below
     sqrt(n) (Gallant-Lambert-Vanstone);
   - the per-scalar rounding divisions c_i = round(k * b_j / n) are
     replaced by multiplications with precomputed 384-bit reciprocals
     g_j = floor(2^384 * |b_j| / n), so a split is a handful of
     schoolbook limb multiplications and no divisions.

   Correctness does not depend on the reciprocal rounding: k1 and k2
   are recomputed exactly as signed multiprecision integers from
   whatever c1, c2 the reciprocals produce, and the identity
   k1 + lambda * k2 = k (mod n) holds for any c1, c2. Rounding quality
   only affects how small the halves are, which the property suite
   checks (both fit in 130 bits). *)

module L = Zkml_ff.Limbs
module S = Zkml_ff.Limbs.Signed

module Make
    (Scalar : Zkml_ff.Field_intf.S)
    (P : sig
      val lambda : Scalar.t Lazy.t
    end) =
struct
  type derived = {
    d_v1 : S.t * S.t;  (* (a1, b1) *)
    d_v2 : S.t * S.t;  (* (a2, b2) *)
    d_g1 : S.t;  (* sign(b2/det) * floor(2^384 |b2| / n) *)
    d_g2 : S.t;  (* sign(-b1/det) * floor(2^384 |b1| / n) *)
  }

  let recip_shift = 384
  let n_limbs = Scalar.modulus_limbs

  let derived =
    lazy
      (let lam = Scalar.to_canonical_limbs (Lazy.force P.lambda) in
       (* Extended Euclid on (n, lam), tracking r_i = s_i*n + t_i*lam;
          each (r_i, -t_i) is a lattice vector (a, b) with
          a + b*lam = 0 (mod n). Stop at the first remainder whose
          square is below n; take its predecessor and successor as the
          second-vector candidates and keep the shorter. *)
       let rec go (r0, t0) (r1, t1) =
         if L.compare (L.mul r1.S.mag r1.S.mag) n_limbs < 0 then begin
           let q, r2m = L.div_rem r0.S.mag r1.S.mag in
           let t2 = S.sub t0 (S.mul (S.of_limbs q) t1) in
           ((r0, t0), (r1, t1), (S.of_limbs r2m, t2))
         end
         else begin
           let q, r2m = L.div_rem r0.S.mag r1.S.mag in
           let t2 = S.sub t0 (S.mul (S.of_limbs q) t1) in
           go (r1, t1) (S.of_limbs r2m, t2)
         end
       in
       let (rp, tp), (r1, t1), (r2, t2) =
         go (S.of_limbs n_limbs, S.zero) (S.of_limbs lam, S.of_limbs [| 1L |])
       in
       let vec (r, t) = (r, S.neg t) in
       let v1 = vec (r1, t1) in
       let norm (a, b) = L.add (L.mul a.S.mag a.S.mag) (L.mul b.S.mag b.S.mag) in
       let cp = vec (rp, tp) and cn = vec (r2, t2) in
       let v2 = if L.compare (norm cp) (norm cn) <= 0 then cp else cn in
       let a1, b1 = v1 and a2, b2 = v2 in
       (* det = a1*b2 - a2*b1 must be +-n (basis of the GLV lattice). *)
       let det = S.sub (S.mul a1 b2) (S.mul a2 b1) in
       if L.compare det.S.mag n_limbs <> 0 then
         failwith "Glv: lattice determinant is not the group order";
       (* c1 = round(k*b2/det), c2 = round(-k*b1/det): fold det's sign
          into the reciprocal signs. *)
       let recip (b : S.t) flip =
         let g, _ = L.div_rem (L.shift_left b.S.mag recip_shift) n_limbs in
         let neg = b.S.neg <> det.S.neg <> flip in
         S.of_limbs ~neg g
       in
       { d_v1 = v1; d_v2 = v2; d_g1 = recip b2 false; d_g2 = recip b1 true })

  (* round((k * |g|) / 2^384) with g's sign. *)
  let mul_round_shift (k : int64 array) (g : S.t) =
    let prod = L.mul k g.S.mag in
    let half = L.shift_left [| 1L |] (recip_shift - 1) in
    let r = L.shift_right (L.add prod half) recip_shift in
    S.of_limbs ~neg:g.S.neg r

  let split (k : Scalar.t) : Group_intf.glv_split =
    let d = Lazy.force derived in
    let kl = Scalar.to_canonical_limbs k in
    let c1 = mul_round_shift kl d.d_g1 in
    let c2 = mul_round_shift kl d.d_g2 in
    let a1, b1 = d.d_v1 and a2, b2 = d.d_v2 in
    (* exact: k1 = k - c1*a1 - c2*a2; k2 = -(c1*b1 + c2*b2) *)
    let k1 =
      S.sub (S.sub (S.of_limbs kl) (S.mul c1 a1)) (S.mul c2 a2)
    in
    let k2 = S.neg (S.add (S.mul c1 b1) (S.mul c2 b2)) in
    {
      Group_intf.k1_neg = k1.S.neg && not (S.is_zero k1);
      k1 = k1.S.mag;
      k2_neg = k2.S.neg && not (S.is_zero k2);
      k2 = k2.S.mag;
    }
end
