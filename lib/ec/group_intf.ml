(** Signature of prime-order groups used by the polynomial commitment
    schemes. Two instantiations: {!Pallas} (a real elliptic curve, the
    halo2 curve) and {!Simulated} (a structurally identical stand-in
    whose discrete logs are known; see DESIGN.md for why this
    substitution preserves the paper's experiments). *)

type glv_split = {
  k1_neg : bool;
  k1 : int64 array;  (** little-endian magnitude of the short scalar k1 *)
  k2_neg : bool;
  k2 : int64 array;
}
(** GLV decomposition of a scalar [k]: [k = (-1)^k1_neg * k1
    + lambda * (-1)^k2_neg * k2 (mod group order)], with both
    magnitudes about half the scalar width. *)

module type S = sig
  module Scalar : Zkml_ff.Field_intf.S

  type t

  val name : string
  val zero : t
  (** The identity element. *)

  val generator : t
  val add : t -> t -> t
  val double : t -> t
  val neg : t -> t
  val sub : t -> t -> t

  val mul : t -> Scalar.t -> t
  (** Scalar multiplication. *)

  val equal : t -> t -> bool
  val is_zero : t -> bool

  val size_bytes : int
  val to_bytes : t -> string
  (** Canonical serialization, [size_bytes] long. *)

  val of_bytes_exn : string -> t
  (** Inverse of {!to_bytes}; raises [Invalid_argument] on malformed or
      off-curve input. *)

  val derive_generators : string -> int -> t array
  (** [derive_generators seed n] produces [n] independent generators
      deterministically (hash-to-group); used for IPA parameter setup. *)

  val random : Zkml_util.Rng.t -> t

  (** {1 Affine batch kernels}

      The batch-affine Pippenger path accumulates MSM buckets in affine
      coordinates: an affine addition costs ~3 field multiplications
      against ~16 for a Jacobian one, provided the per-addition field
      inversion is amortized — {!Affine.batch_add} performs any number
      of independent accumulations with a single inversion
      (Montgomery's batch-inversion trick). For the simulated group the
      "affine" representation is the element itself and no inversions
      exist. *)
  module Affine : sig
    type point
    (** A mutable affine accumulator cell, owned by the caller. *)

    val infinity : unit -> point
    (** A fresh cell holding the identity. *)

    val is_infinity : point -> bool

    val neg : point -> point
    (** Fresh negated copy; the argument is not mutated. *)

    val to_group : point -> t

    val batch_of_group : t array -> point array
    (** Fresh affine cells for a batch of group elements, normalizing
        all of them with one shared inversion. *)

    val batch_add : point array -> dst:int array -> src:point array ->
      len:int -> unit
    (** [batch_add acc ~dst ~src ~len] performs
        [acc.(dst.(i)) <- acc.(dst.(i)) + src.(i)] for [i < len] with at
        most one field inversion, handling identity, doubling and
        cancellation cases. The [dst] indices must be pairwise distinct
        within one call (the MSM scheduler's collision queue guarantees
        this); [src] cells are read only. *)
  end

  val endo : ((t -> t) * (Scalar.t -> glv_split)) option
  (** GLV endomorphism, when the curve has one: [Some (phi, split)]
      with [phi p = lambda * p] for the cube root of unity [lambda]
      implied by {!glv_split}. [None] disables the decomposition (the
      simulated group, and fields without a cube root of unity). *)
end
