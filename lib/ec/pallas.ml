(* The Pallas curve: y^2 = x^3 + 5 over the Pasta base field, with scalar
   field Pasta.Fq (the curve's prime group order). Points are kept in
   Jacobian coordinates (X : Y : Z); the identity has Z = 0. *)

module Fp = Zkml_ff.Pasta.Fp
module Fp_extra = Zkml_ff.Field_extra.Make (Fp)
module Scalar = Zkml_ff.Pasta.Fq

type t = { x : Fp.t; y : Fp.t; z : Fp.t }

let name = "pallas"
let b_coeff = Fp.of_int 5
let zero = { x = Fp.one; y = Fp.one; z = Fp.zero }
let is_zero p = Fp.is_zero p.z

(* The standard Pallas generator is (-1, 2). *)
let generator = { x = Fp.neg Fp.one; y = Fp.of_int 2; z = Fp.one }

let double p =
  if is_zero p then p
  else begin
    (* dbl-2009-l (a = 0) *)
    let a = Fp.square p.x in
    let b = Fp.square p.y in
    let c = Fp.square b in
    let d =
      let t = Fp.square (Fp.add p.x b) in
      let t = Fp.sub (Fp.sub t a) c in
      Fp.add t t
    in
    let e = Fp.add a (Fp.add a a) in
    let f = Fp.square e in
    let x3 = Fp.sub f (Fp.add d d) in
    let eight_c =
      let c2 = Fp.add c c in
      let c4 = Fp.add c2 c2 in
      Fp.add c4 c4
    in
    let y3 = Fp.sub (Fp.mul e (Fp.sub d x3)) eight_c in
    let z3 = Fp.add (Fp.mul p.y p.z) (Fp.mul p.y p.z) in
    { x = x3; y = y3; z = z3 }
  end

let add p q =
  if is_zero p then q
  else if is_zero q then p
  else begin
    (* add-2007-bl *)
    let z1z1 = Fp.square p.z in
    let z2z2 = Fp.square q.z in
    let u1 = Fp.mul p.x z2z2 in
    let u2 = Fp.mul q.x z1z1 in
    let s1 = Fp.mul p.y (Fp.mul q.z z2z2) in
    let s2 = Fp.mul q.y (Fp.mul p.z z1z1) in
    if Fp.equal u1 u2 then
      if Fp.equal s1 s2 then double p else zero
    else begin
      let h = Fp.sub u2 u1 in
      let hh = Fp.square h in
      let hhh = Fp.mul h hh in
      let r = Fp.sub s2 s1 in
      let v = Fp.mul u1 hh in
      let x3 = Fp.sub (Fp.sub (Fp.square r) hhh) (Fp.add v v) in
      let y3 = Fp.sub (Fp.mul r (Fp.sub v x3)) (Fp.mul s1 hhh) in
      let z3 = Fp.mul (Fp.mul p.z q.z) h in
      { x = x3; y = y3; z = z3 }
    end
  end

let neg p = if is_zero p then p else { p with y = Fp.neg p.y }
let sub p q = add p (neg q)

let mul p s =
  let limbs = Scalar.to_canonical_limbs s in
  let acc = ref zero in
  for i = Array.length limbs - 1 downto 0 do
    for bit = 63 downto 0 do
      acc := double !acc;
      if Int64.logand (Int64.shift_right_logical limbs.(i) bit) 1L = 1L then
        acc := add !acc p
    done
  done;
  !acc

let equal p q =
  match (is_zero p, is_zero q) with
  | true, true -> true
  | true, false | false, true -> false
  | false, false ->
      let z1z1 = Fp.square p.z and z2z2 = Fp.square q.z in
      Fp.equal (Fp.mul p.x z2z2) (Fp.mul q.x z1z1)
      && Fp.equal
           (Fp.mul p.y (Fp.mul q.z z2z2))
           (Fp.mul q.y (Fp.mul p.z z1z1))

let to_affine p =
  if is_zero p then None
  else begin
    let zinv = Fp.inv p.z in
    let zinv2 = Fp.square zinv in
    Some (Fp.mul p.x zinv2, Fp.mul p.y (Fp.mul zinv zinv2))
  end

let size_bytes = 65

let to_bytes p =
  match to_affine p with
  | None -> String.make size_bytes '\000'
  | Some (x, y) -> "\001" ^ Fp.to_bytes x ^ Fp.to_bytes y

let of_bytes_exn s =
  if String.length s <> size_bytes then invalid_arg "Pallas.of_bytes_exn: length";
  match s.[0] with
  | '\000' -> zero
  | '\001' ->
      let x = Fp.of_bytes_exn (String.sub s 1 32) in
      let y = Fp.of_bytes_exn (String.sub s 33 32) in
      if not (Fp.equal (Fp.square y) (Fp.add (Fp.mul x (Fp.square x)) b_coeff))
      then invalid_arg "Pallas.of_bytes_exn: point not on curve";
      { x; y; z = Fp.one }
  | _ -> invalid_arg "Pallas.of_bytes_exn: bad tag"

let on_curve_affine x y =
  Fp.equal (Fp.square y) (Fp.add (Fp.mul x (Fp.square x)) b_coeff)

let of_affine_exn x y =
  if not (on_curve_affine x y) then invalid_arg "Pallas.of_affine_exn";
  { x; y; z = Fp.one }

(* Deterministic hash-to-curve by try-and-increment over SHA-256 output. *)
let derive_generators seed n =
  let point_of_counter label i =
    let rec attempt j =
      let h =
        Zkml_util.Sha256.digest
          (Printf.sprintf "zkml-pallas-gen:%s:%d:%d" label i j)
      in
      (* 32 bytes -> candidate x: clear top two bits so it is < 2^254 < p *)
      let bytes = Bytes.of_string h in
      Bytes.set bytes 31
        (Char.chr (Char.code (Bytes.get bytes 31) land 0x3f));
      match Fp.of_bytes_exn (Bytes.to_string bytes) with
      | exception Invalid_argument _ -> attempt (j + 1)
      | x -> (
          let rhs = Fp.add (Fp.mul x (Fp.square x)) b_coeff in
          match Fp_extra.sqrt rhs with
          | Some y when not (Fp.is_zero y) -> { x; y; z = Fp.one }
          | _ -> attempt (j + 1))
    in
    attempt 0
  in
  Array.init n (point_of_counter seed)

let random rng = mul generator (Scalar.random rng)

(* ------------------------------------------------------------------ *)
(* Affine batch kernels for the batch-affine Pippenger MSM. *)

module Affine = struct
  type point = { mutable ax : Fp.t; mutable ay : Fp.t; mutable inf : bool }

  let infinity () = { ax = Fp.zero; ay = Fp.zero; inf = true }
  let is_infinity p = p.inf

  let neg p =
    if p.inf then infinity () else { ax = p.ax; ay = Fp.neg p.ay; inf = false }

  let to_group p =
    if p.inf then zero else { x = p.ax; y = p.ay; z = Fp.one }

  (* Jacobian -> affine for a whole batch with one shared inversion:
     invert all the nonzero Z's via Montgomery's trick, then
     (X/Z^2, Y/Z^3) per point. *)
  let batch_of_group (pts : t array) =
    let nz = ref 0 in
    Array.iter (fun p -> if not (is_zero p) then incr nz) pts;
    let zs = Array.make (max 1 !nz) Fp.one in
    let j = ref 0 in
    Array.iter
      (fun p ->
        if not (is_zero p) then begin
          zs.(!j) <- p.z;
          incr j
        end)
      pts;
    let zinvs = if !nz = 0 then [||] else Fp_extra.batch_inv (Array.sub zs 0 !nz) in
    let j = ref 0 in
    Array.map
      (fun p ->
        if is_zero p then infinity ()
        else begin
          let zi = zinvs.(!j) in
          incr j;
          let zi2 = Fp.square zi in
          { ax = Fp.mul p.x zi2; ay = Fp.mul p.y (Fp.mul zi zi2); inf = false }
        end)
      pts

  (* Per-element case tags for one batch_add call. *)
  let case_skip = 0 (* src infinite: no-op *)
  let case_copy = 1 (* acc infinite: plain copy *)
  let case_cancel = 2 (* src = -acc: result infinite *)
  let case_double = 3 (* src = acc: tangent slope, denom 2y *)
  let case_add = 4 (* generic chord slope, denom x2 - x1 *)

  let batch_add (acc : point array) ~(dst : int array) ~(src : point array)
      ~(len : int) =
    if len > 0 then begin
      let cases = Array.make len case_skip in
      let denoms = Array.make len Fp.one in
      let nd = ref 0 in
      for i = 0 to len - 1 do
        let a = acc.(dst.(i)) and s = src.(i) in
        if s.inf then cases.(i) <- case_skip
        else if a.inf then cases.(i) <- case_copy
        else if Fp.equal a.ax s.ax then
          if Fp.equal a.ay s.ay then begin
            (* a.ay <> 0: the group order is odd, so no 2-torsion *)
            cases.(i) <- case_double;
            denoms.(!nd) <- Fp.add a.ay a.ay;
            incr nd
          end
          else cases.(i) <- case_cancel
        else begin
          cases.(i) <- case_add;
          denoms.(!nd) <- Fp.sub s.ax a.ax;
          incr nd
        end
      done;
      let invs =
        if !nd = 0 then [||] else Fp_extra.batch_inv (Array.sub denoms 0 !nd)
      in
      let j = ref 0 in
      for i = 0 to len - 1 do
        let a = acc.(dst.(i)) and s = src.(i) in
        let c = cases.(i) in
        if c = case_copy then begin
          a.ax <- s.ax;
          a.ay <- s.ay;
          a.inf <- false
        end
        else if c = case_cancel then begin
          a.ax <- Fp.zero;
          a.ay <- Fp.zero;
          a.inf <- true
        end
        else if c = case_double then begin
          let inv = invs.(!j) in
          incr j;
          let x2 = Fp.square a.ax in
          let lam = Fp.mul (Fp.add x2 (Fp.add x2 x2)) inv in
          let x3 = Fp.sub (Fp.square lam) (Fp.add a.ax a.ax) in
          let y3 = Fp.sub (Fp.mul lam (Fp.sub a.ax x3)) a.ay in
          a.ax <- x3;
          a.ay <- y3
        end
        else if c = case_add then begin
          let inv = invs.(!j) in
          incr j;
          let lam = Fp.mul (Fp.sub s.ay a.ay) inv in
          let x3 = Fp.sub (Fp.sub (Fp.square lam) a.ax) s.ax in
          let y3 = Fp.sub (Fp.mul lam (Fp.sub a.ax x3)) a.ay in
          a.ax <- x3;
          a.ay <- y3
        end
      done
    end
end

(* ------------------------------------------------------------------ *)
(* GLV endomorphism: Fp has 3 | p - 1, so zeta = g^((p-1)/3) is a
   nontrivial cube root of unity and (x, y) -> (zeta * x, y) is an
   endomorphism acting as multiplication by a cube root of unity lambda
   in the scalar field. Which of the two nontrivial (zeta, lambda)
   pairings is correct is resolved empirically on the generator at
   first use — derived from the moduli like the Montgomery constants,
   no transcribed curve constants. *)

let third_root (type a) (module F : Zkml_ff.Field_intf.S with type t = a) : a =
  let pm1 = Array.copy F.modulus_limbs in
  pm1.(0) <- Int64.sub pm1.(0) 1L;
  let e, r = Zkml_ff.Limbs.div_rem pm1 [| 3L |] in
  if not (Zkml_ff.Limbs.is_zero r) then
    failwith "Pallas.third_root: 3 does not divide p - 1";
  F.pow_limbs F.generator e

let endo_pair =
  lazy
    (let zeta = third_root (module Fp) in
     let lam = third_root (module Scalar) in
     let candidates =
       [ (zeta, lam);
         (zeta, Scalar.square lam);
         (Fp.square zeta, lam);
         (Fp.square zeta, Scalar.square lam)
       ]
     in
     let phi_of z p = if is_zero p then p else { p with x = Fp.mul z p.x } in
     match
       List.find_opt
         (fun (z, l) -> equal (phi_of z generator) (mul generator l))
         candidates
     with
     | Some (z, l) -> (phi_of z, l)
     | None -> failwith "Pallas.endo: no (zeta, lambda) pairing matched")

module Glv_split =
  Glv.Make
    (Scalar)
    (struct
      let lambda = lazy (snd (Lazy.force endo_pair))
    end)

let endo =
  Some
    ( (fun p -> (fst (Lazy.force endo_pair)) p),
      fun k -> Glv_split.split k )
