(* Bench-regression gate driver.

   Compares freshly measured bench JSON against committed baselines:

     regress.exe --threshold 1.75 \
       --baseline BENCH_PR2.json --current _build/regress/BENCH_PR2.json \
       --baseline BENCH_PR5.json --current _build/regress/BENCH_PR5.json

   [--baseline]/[--current] pair up in order. Exit status:
     0  no regression (or regressions found but not --strict)
     1  regression found and --strict
     2  usage or parse error

   Without --strict a regression prints WARN lines but exits 0, so
   `make check` stays green on noisy CI machines; STRICT=1 promotes the
   gate to a hard failure. *)

module Json = Zkml_util.Json
module Gate = Zkml_util.Bench_gate
module Err = Zkml_util.Err

let usage () =
  prerr_endline
    "usage: regress.exe [--threshold R] [--strict] (--baseline FILE \
     --current FILE)...";
  exit 2

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error e ->
    Printf.eprintf "regress: cannot read %s: %s\n" path e;
    exit 2

let parse_series path =
  let doc =
    match Json.of_string (read_file path) with
    | Ok d -> d
    | Error e ->
        Printf.eprintf "regress: %s: %s\n" path (Err.to_string e);
        exit 2
  in
  (match Json.member "schema_version" doc with
  | Some (Json.Num v) when int_of_float v > 1 ->
      Printf.eprintf
        "regress: %s: schema_version %d is newer than this gate understands\n"
        path (int_of_float v);
      exit 2
  | _ -> ());
  let s = Gate.series_of_json doc in
  if s = [] then begin
    Printf.eprintf "regress: %s: no recognised bench samples\n" path;
    exit 2
  end;
  s

let () =
  let threshold = ref 1.75
  and strict = ref false
  and baselines = ref []
  and currents = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: r :: rest ->
        (match float_of_string_opt r with
        | Some t when t > 0.0 -> threshold := t
        | _ ->
            Printf.eprintf "regress: bad threshold %S\n" r;
            exit 2);
        parse rest
    | "--strict" :: rest ->
        strict := true;
        parse rest
    | "--baseline" :: f :: rest ->
        baselines := f :: !baselines;
        parse rest
    | "--current" :: f :: rest ->
        currents := f :: !currents;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baselines = List.rev !baselines and currents = List.rev !currents in
  if baselines = [] || List.length baselines <> List.length currents then
    usage ();
  let any_regressed = ref false in
  List.iter2
    (fun b c ->
      let label = Printf.sprintf "%s vs %s" (Filename.basename b) c in
      let verdict =
        Gate.compare_series ~threshold:!threshold ~baseline:(parse_series b)
          ~current:(parse_series c)
      in
      List.iter print_endline
        (Gate.report_lines ~label ~threshold:!threshold verdict);
      if not (Gate.passed verdict) then any_regressed := true)
    baselines currents;
  if !any_regressed then begin
    if !strict then begin
      prerr_endline "regress: FAIL (strict mode)";
      exit 1
    end
    else prerr_endline "regress: WARN regressions found (non-strict; exit 0)"
  end
  else print_endline "regress: ok"
