(* Benchmark harness: regenerates every table of the paper's evaluation
   (Section 9). Figures 1-4 are architecture diagrams with no data
   series, so the data artifacts are Tables 5-14 plus the 9.4 optimizer
   savings and 9.5 cost-estimation-accuracy measurements. Each section
   prints our measurement next to the paper's reported value;
   EXPERIMENTS.md records the shape comparison.

   Run everything:        dune exec bench/main.exe
   Run some sections:     dune exec bench/main.exe -- table6 table9
   Microbenchmarks only:  dune exec bench/main.exe -- ops
   Machine-readable:      dune exec bench/main.exe -- table6 --json out.json

   With --json, every end-to-end proving run is traced and the per-model
   results (k, ncols, prove/verify seconds, proof bytes, measured span
   breakdown) are written to the given file so successive PRs accumulate
   a perf trajectory. *)

module T = Zkml_tensor.Tensor
module Fx = Zkml_fixed.Fixed
module Zoo = Zkml_models.Zoo
module Opt = Zkml_compiler.Optimizer
module Spec = Zkml_compiler.Layout_spec

module Sim61 = Zkml_ec.Simulated.Make (Zkml_ff.Fp61)
module Kzg = Zkml_commit.Kzg.Make (Sim61)
module Ipa = Zkml_commit.Ipa.Make (Sim61)
module Pipe_kzg = Zkml_compiler.Pipeline.Make (Kzg)
module Pipe_ipa = Zkml_compiler.Pipeline.Make (Ipa)

let max_k = 15
let kzg_params = lazy (Kzg.setup ~max_size:(1 lsl max_k) ~seed:"bench")
let ipa_params = lazy (Ipa.setup ~max_size:(1 lsl max_k) ~seed:"bench")

let line () = print_endline (String.make 78 '-')

(* Version stamp for every machine-readable artifact this harness
   writes; bench/regress.ml refuses files it does not understand. *)
let schema_version = 1

(* ZKML_BENCH_DIR redirects the BENCH_*.json artifacts (default: cwd),
   so a regression run can write scratch copies without clobbering the
   committed baselines. *)
let bench_path name =
  match Sys.getenv_opt "ZKML_BENCH_DIR" with
  | None | Some "" -> name
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      Filename.concat dir name

(* Comma-separated allow-list in the environment, e.g.
   ZKML_BENCH_MODELS=mnist,dlrm. None means "no filter". *)
let env_allow_list var =
  match Sys.getenv_opt var with
  | None | Some "" -> None
  | Some s ->
      Some
        (List.filter_map
           (fun tok ->
             let tok = String.trim tok in
             if tok = "" then None else Some tok)
           (String.split_on_char ',' s))

let allowed var name =
  match env_allow_list var with
  | None -> true
  | Some l -> List.mem name l

(* ------------------------------------------------------------------ *)
(* --json: machine-readable per-model results *)

module Obs = Zkml_obs.Obs

let json_out : string option ref = ref None
let json_rows : string list ref = ref []  (* serialized, reverse order *)

(* Runs [f] under the tracing sink when --json was requested, so rows
   can include a measured span breakdown. *)
let run_observed f =
  if !json_out = None then (f (), None)
  else begin
    let r, report = Obs.with_enabled f in
    (r, Some report)
  end

let record_json ~section ~model ~backend ~k ~ncols ~prove_s ~verify_s ~bytes
    report =
  if !json_out <> None then begin
    let spans =
      match report with
      | None -> []
      | Some rep ->
          let ntt = Obs.total_of ~under:"prove" rep "ntt" in
          let msm = Obs.total_of ~under:"prove" rep "msm" in
          let lookup = Obs.total_of ~under:"prove" rep "lookup" in
          let prove = Obs.total_of rep "prove" in
          [
            ("ntt", ntt);
            ("msm", msm);
            ("lookup", lookup);
            ("other", Float.max 0.0 (prove -. ntt -. msm -. lookup));
          ]
    in
    let row =
      Printf.sprintf
        "{\"section\":\"%s\",\"model\":\"%s\",\"backend\":\"%s\",\"k\":%d,\"ncols\":%d,\"prove_s\":%s,\"verify_s\":%s,\"proof_bytes\":%d,\"spans\":{%s}}"
        (Obs.json_escape section) (Obs.json_escape model)
        (Obs.json_escape backend) k ncols
        (Obs.json_float prove_s) (Obs.json_float verify_s) bytes
        (String.concat ","
           (List.map
              (fun (n, v) -> Printf.sprintf "\"%s\":%s" n (Obs.json_float v))
              spans))
    in
    json_rows := row :: !json_rows
  end

let write_json_results () =
  match !json_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc
        (Printf.sprintf "{\"schema_version\":%d,\"results\":[%s]}\n"
           schema_version
           (String.concat "," (List.rev !json_rows)));
      close_out oc;
      Printf.printf "wrote machine-readable results to %s\n" path

let section name title f =
  line ();
  Printf.printf "== %s: %s\n%!" name title;
  line ();
  let _, s = Zkml_util.Timer.time f in
  Printf.printf "(section %s completed in %.1f s)\n%!" name s

(* ------------------------------------------------------------------ *)
(* Table 5: models, parameters, flops *)

let paper_table5 =
  [ ("GPT-2 (distilled)", "81.3M", "188.9M"); ("Diffusion", "19.5M", "22.9B");
    ("Twitter (MaskNet)", "48.1M", "96.2M"); ("DLRM", "764.3K", "1.9M");
    ("MobileNet (ImageNet)", "3.5M", "601.8M");
    ("ResNet-18 (CIFAR-10)", "280.9K", "81.9M");
    ("VGG16 (CIFAR-10)", "15.2M", "627.9M"); ("MNIST", "8.1K", "444.9K") ]

let table5 () =
  Printf.printf "%-12s %-22s %8s %10s   %s\n" "model" "paper model" "params"
    "flops" "(paper: params / flops)";
  List.iter
    (fun m ->
      let st = Zkml_nn.Stats.compute m.Zoo.graph in
      let paper =
        match
          List.find_opt (fun (n, _, _) -> n = m.Zoo.paper_name) paper_table5
        with
        | Some (_, p, f) -> Printf.sprintf "(%s / %s)" p f
        | None -> ""
      in
      Printf.printf "%-12s %-22s %8d %10d   %s\n" m.Zoo.name m.Zoo.paper_name
        st.Zkml_nn.Stats.params st.Zkml_nn.Stats.flops paper)
    (Zoo.all ())

(* ------------------------------------------------------------------ *)
(* Tables 6 and 7: end-to-end prove/verify/size per backend *)

type e2e = {
  model : string;
  prove_s : float;
  verify_s : float;
  bytes : int;
  k : int;
  ncols : int;
}

let run_kzg ?specs ?ncols_min ?ncols_max ?objective m =
  Pipe_kzg.run ?specs ?ncols_min ?ncols_max ?objective ~cfg:m.Zoo.cfg
    ~params:(Lazy.force kzg_params) m.Zoo.graph (Zoo.sample_inputs m)

let run_ipa ?specs ?ncols_min ?ncols_max ?objective m =
  Pipe_ipa.run ?specs ?ncols_min ?ncols_max ?objective ~cfg:m.Zoo.cfg
    ~params:(Lazy.force ipa_params) m.Zoo.graph (Zoo.sample_inputs m)

let kzg_results : (string, e2e) Hashtbl.t = Hashtbl.create 8

let paper_table6 =
  [ ("gpt2", "3651.67 s", "18.70 s", "28128 B");
    ("diffusion", "3600.57 s", "92.78 ms", "28704 B");
    ("twitter", "358.7 s", "22.41 ms", "6816 B");
    ("dlrm", "34.4 s", "12.26 ms", "18816 B");
    ("mobilenet", "1225.5 s", "17.67 ms", "17664 B");
    ("resnet18", "52.9 s", "11.84 ms", "15744 B");
    ("vgg16", "637.14 s", "9.62 ms", "12064 B");
    ("mnist", "2.45 s", "6.69 ms", "6560 B") ]

let paper_table7 =
  [ ("gpt2", "3949.60 s", "11.98 s", "16512 B");
    ("diffusion", "3658.77 s", "5.17 s", "30464 B");
    ("twitter", "364.9 s", "2.28 s", "8448 B");
    ("dlrm", "30.0 s", "0.11 s", "18816 B");
    ("mobilenet", "1217.6 s", "3.34 s", "19360 B");
    ("resnet18", "46.5 s", "0.20 s", "17120 B");
    ("vgg16", "619.4 s", "2.49 s", "17184 B");
    ("mnist", "2.36 s", "22.26 ms", "7680 B") ]

let print_e2e paper r =
  let p, v, b =
    match List.find_opt (fun (n, _, _, _) -> n = r.model) paper with
    | Some (_, p, v, b) -> (p, v, b)
    | None -> ("-", "-", "-")
  in
  Printf.printf
    "%-12s prove %8.2f s  verify %9.4f s  proof %6d B  (k=%d cols=%d)  paper: %s / %s / %s\n%!"
    r.model r.prove_s r.verify_s r.bytes r.k r.ncols p v b

let table_e2e which =
  let section, backend =
    match which with `Kzg -> ("table6", "kzg") | `Ipa -> ("table7", "ipa")
  in
  List.iter
    (fun m ->
      let (prove_s, verify_s, bytes, k, ncols, verified, store), report =
        run_observed (fun () ->
            match which with
            | `Kzg ->
                let r = run_kzg m in
                ( r.Pipe_kzg.prove_s, r.Pipe_kzg.verify_s,
                  r.Pipe_kzg.proof_bytes, r.Pipe_kzg.plan.Opt.k,
                  r.Pipe_kzg.plan.Opt.ncols, r.Pipe_kzg.verified, true )
            | `Ipa ->
                let r = run_ipa m in
                ( r.Pipe_ipa.prove_s, r.Pipe_ipa.verify_s,
                  r.Pipe_ipa.proof_bytes, r.Pipe_ipa.plan.Opt.k,
                  r.Pipe_ipa.plan.Opt.ncols, r.Pipe_ipa.verified, false ))
      in
      if not verified then
        Printf.printf "%-12s VERIFICATION FAILED\n%!" m.Zoo.name
      else begin
        let r = { model = m.Zoo.name; prove_s; verify_s; bytes; k; ncols } in
        if store then Hashtbl.replace kzg_results m.Zoo.name r;
        record_json ~section ~model:m.Zoo.name ~backend ~k ~ncols ~prove_s
          ~verify_s ~bytes report;
        print_e2e (match which with `Kzg -> paper_table6 | `Ipa -> paper_table7) r
      end)
    (Zoo.all ())

(* ------------------------------------------------------------------ *)
(* Table 8: FP32 vs fixed-point (circuit-semantics) accuracy *)

let table8 () =
  let rng = Zkml_util.Rng.create 55L in
  let data =
    Zkml_nn.Dataset.classification ~seed:7L ~num_classes:4 ~h:8 ~w:8 ~c:1
      ~train_per_class:40 ~test_per_class:25 ~noise:0.15
  in
  let module G = Zkml_nn.Graph in
  let train_and_compare name make =
    let g = make () in
    ignore
      (Zkml_nn.Train.sgd g ~data:data.Zkml_nn.Dataset.train ~epochs:6 ~lr:0.03
         ~rng);
    let facc = Zkml_nn.Train.float_accuracy g data.Zkml_nn.Dataset.test in
    (* the fixed-point executor is bit-identical to the circuit (see
       test_compiler), so quantized accuracy = in-circuit accuracy *)
    let cfg = { Fx.scale_bits = 8; table_bits = 14 } in
    let qacc = Zkml_nn.Train.quant_accuracy cfg g data.Zkml_nn.Dataset.test in
    Printf.printf "%-10s fp32 %.2f%%  circuit %.2f%%  diff %+.2f%%\n%!" name
      (100. *. facc) (100. *. qacc)
      (100. *. (qacc -. facc))
  in
  let mk_mnist () =
    let rng = Zkml_util.Rng.create 61L in
    let g = G.create "t8-mnist" in
    let x = G.input g [| 1; 8; 8; 1 |] in
    let c =
      G.relu g
        (G.conv2d ~padding:Zkml_nn.Op.Same g x
           (G.he_weight g rng [| 3; 3; 1; 4 |] ~label:"w")
           (G.zero_weight g [| 4 |] ~label:"b"))
    in
    let p = G.avg_pool2d g ~size:2 c in
    let f = G.flatten g p in
    let y =
      G.fully_connected g f
        (G.he_weight g rng [| 64; 4 |] ~label:"fw")
        (G.zero_weight g [| 4 |] ~label:"fb")
    in
    G.mark_output g y;
    g
  in
  let mk_resnet () =
    let rng = Zkml_util.Rng.create 62L in
    let g = G.create "t8-resnet" in
    let x = G.input g [| 1; 8; 8; 1 |] in
    let stem =
      G.relu g
        (G.conv2d ~padding:Zkml_nn.Op.Same g x
           (G.he_weight g rng [| 3; 3; 1; 4 |] ~label:"sw")
           (G.zero_weight g [| 4 |] ~label:"sb"))
    in
    let c1 =
      G.conv2d ~padding:Zkml_nn.Op.Same g stem
        (G.he_weight g rng [| 3; 3; 4; 4 |] ~label:"w1")
        (G.zero_weight g [| 4 |] ~label:"b1")
    in
    let r = G.relu g (G.add_ g c1 stem) in
    let p = G.global_avg_pool g r in
    let f = G.flatten g p in
    let y =
      G.fully_connected g f
        (G.he_weight g rng [| 4; 4 |] ~label:"fw")
        (G.zero_weight g [| 4 |] ~label:"fb")
    in
    G.mark_output g y;
    g
  in
  let mk_vgg () =
    let rng = Zkml_util.Rng.create 63L in
    let g = G.create "t8-vgg" in
    let x = G.input g [| 1; 8; 8; 1 |] in
    let conv c_in c_out x label =
      G.relu g
        (G.conv2d ~padding:Zkml_nn.Op.Same g x
           (G.he_weight g rng [| 3; 3; c_in; c_out |] ~label)
           (G.zero_weight g [| c_out |] ~label:(label ^ "b")))
    in
    let s = conv 1 4 x "c1" in
    let s = conv 4 4 s "c2" in
    let p = G.max_pool2d g ~size:2 s in
    let f = G.flatten g p in
    let y =
      G.fully_connected g f
        (G.he_weight g rng [| 64; 4 |] ~label:"fw")
        (G.zero_weight g [| 4 |] ~label:"fb")
    in
    G.mark_output g y;
    g
  in
  Printf.printf "(paper: MNIST 0%%, VGG16 +0.01%%, ResNet-18 -0.01%%)\n";
  train_and_compare "mnist" mk_mnist;
  train_and_compare "resnet18" mk_resnet;
  train_and_compare "vgg16" mk_vgg

(* ------------------------------------------------------------------ *)
(* Table 9: comparison to prior-work-style baselines *)

let table9 () =
  Printf.printf
    "(paper: ZKML ResNet-18 52.9s/12ms/15.3kB vs zkCNN 88.3s/59ms/341kB vs vCNN ~31h/20s/0.34kB)\n";
  List.iter
    (fun m ->
      let zkml = run_kzg m in
      Printf.printf
        "%-10s %-40s prove %8.2f s  verify %8.4f s  proof %6d B\n%!"
        m.Zoo.name "ZKML (optimized)" zkml.Pipe_kzg.prove_s
        zkml.Pipe_kzg.verify_s zkml.Pipe_kzg.proof_bytes;
      List.iter
        (fun kind ->
          let spec = Zkml_baselines.Baseline.spec_of kind in
          let ncols = Zkml_baselines.Baseline.fixed_ncols ~cfg:m.Zoo.cfg kind in
          match
            run_kzg ~specs:[ spec ] ~ncols_min:ncols ~ncols_max:ncols m
          with
          | r ->
              Printf.printf
                "%-10s %-40s prove %8.2f s  verify %8.4f s  proof %6d B\n%!"
                m.Zoo.name
                (Zkml_baselines.Baseline.name kind)
                r.Pipe_kzg.prove_s r.Pipe_kzg.verify_s r.Pipe_kzg.proof_bytes
          | exception e ->
              Printf.printf "%-10s %-40s failed: %s\n%!" m.Zoo.name
                (Zkml_baselines.Baseline.name kind)
                (Printexc.to_string e))
        [ Zkml_baselines.Baseline.Lookup_fixed_style;
          Zkml_baselines.Baseline.Bitdecomp_style ])
    [ Zoo.resnet18 (); Zoo.vgg16 () ]

(* ------------------------------------------------------------------ *)
(* Table 10: optimizer vs fixed configuration *)

let paper_table10 =
  [ ("gpt2", "63%"); ("diffusion", "39%"); ("twitter", "29%"); ("dlrm", "23%");
    ("mobilenet", "96%"); ("resnet18", "41%"); ("vgg16", "131%");
    ("mnist", "76%") ]

let table10 () =
  Printf.printf
    "(fixed configuration pins the column count for every model, as in the paper)\n";
  List.iter
    (fun m ->
      let opt =
        match Hashtbl.find_opt kzg_results m.Zoo.name with
        | Some r -> r.prove_s
        | None -> (run_kzg m).Pipe_kzg.prove_s
      in
      let fixed =
        (run_kzg ~specs:[ Spec.default ] ~ncols_min:40 ~ncols_max:40 m)
          .Pipe_kzg.prove_s
      in
      let improvement = 100.0 *. ((fixed /. opt) -. 1.0) in
      let paper =
        match List.assoc_opt m.Zoo.name paper_table10 with
        | Some p -> p
        | None -> "-"
      in
      Printf.printf
        "%-12s ZKML %8.2f s   fixed-40-cols %8.2f s   improvement %+6.0f%%   (paper: %s)\n%!"
        m.Zoo.name opt fixed improvement paper)
    (Zoo.all ())

(* ------------------------------------------------------------------ *)
(* Table 11: fixed gadget set ablation *)

let table11 () =
  Printf.printf "(paper: MNIST +148%%, DLRM +2399%%, ResNet-18 +1436%%)\n";
  List.iter
    (fun m ->
      let opt =
        match Hashtbl.find_opt kzg_results m.Zoo.name with
        | Some r -> r.prove_s
        | None -> (run_kzg m).Pipe_kzg.prove_s
      in
      let restricted = (run_kzg ~specs:Spec.fixed_gadgets m).Pipe_kzg.prove_s in
      Printf.printf
        "%-12s ZKML %8.2f s   fixed gadget set %8.2f s   slowdown %+6.0f%%\n%!"
        m.Zoo.name opt restricted
        (100.0 *. ((restricted /. opt) -. 1.0)))
    [ Zoo.mnist (); Zoo.dlrm (); Zoo.resnet18 () ]

(* ------------------------------------------------------------------ *)
(* Table 12: optimizer runtime with and without pruning *)

let table12 () =
  Printf.printf
    "(paper: MNIST 6.3s vs 9.0s; ResNet-18 28.1 vs 77.5; GPT-2 185.3 vs 277.2)\n";
  let params = Lazy.force kzg_params in
  let times = Pipe_kzg.calibrated params in
  List.iter
    (fun m ->
      let qinputs =
        List.map (T.map (Fx.quantize m.Zoo.cfg)) (Zoo.sample_inputs m)
      in
      let exec = Zkml_nn.Quant_exec.run m.Zoo.cfg m.Zoo.graph ~inputs:qinputs in
      let common f =
        f ~times ~backend:Zkml_compiler.Costmodel.Kzg
          ~group_bytes:Kzg.G.size_bytes ~field_bytes:Zkml_ff.Fp61.size_bytes
          ~cfg:m.Zoo.cfg m.Zoo.graph exec
      in
      let (pruned, pstats), pruned_s =
        Zkml_util.Timer.time (fun () -> common (Opt.optimize ?specs:None ?ncols_min:None ?ncols_max:None ?objective:None ?k_max:None))
      in
      let (unpruned, ustats), unpruned_s =
        Zkml_util.Timer.time (fun () ->
            common (Opt.optimize_unpruned ?specs:None ?ncols_min:None ?ncols_max:None ?objective:None ?k_max:None))
      in
      Printf.printf
        "%-12s pruned %7.2f s (%4d candidates)   non-pruned %7.2f s (%5d candidates)   no regression: %b\n%!"
        m.Zoo.name pruned_s pstats.Opt.candidates unpruned_s
        ustats.Opt.candidates
        (unpruned.Opt.est_cost <= pruned.Opt.est_cost +. 1e-9))
    [ Zoo.mnist (); Zoo.resnet18 (); Zoo.gpt2 () ]

(* ------------------------------------------------------------------ *)
(* Table 13: single-row vs multi-row constraints *)

module Proto13 = Zkml_plonkish.Protocol.Make (Kzg)

let table13 () =
  Printf.printf
    "(paper: 18.55s single-row vs 18.58-18.59s multi-row: within ~0.2%%)\n";
  (* Fixed workload of adder + max + dot chips over 10 columns (as in
     the paper's setup); the multi-row variants read their second
     operand from the next row via a rotation. *)
  let module F = Zkml_ff.Fp61 in
  let open Zkml_plonkish in
  let k = 10 in
  let n = 1 lsl k in
  let blinding = 5 in
  let content = n - blinding - 2 in
  let params = Lazy.force kzg_params in
  let build ~multi_row =
    let rot = if multi_row then 1 else 0 in
    let open Expr in
    let gates =
      [ { Circuit.gate_name = "adder";
          polys = [ Mul (fixed 0, Sub (advice 2, Add (advice 0, advice ~rot 1))) ] };
        { Circuit.gate_name = "max";
          polys =
            [ Mul (fixed 0,
                   Mul (Sub (advice 5, advice 3), Sub (advice 5, advice ~rot 4))) ] };
        { Circuit.gate_name = "dot";
          polys =
            [ Mul (fixed 0,
                   Sub (advice 9,
                        Add (Mul (advice 6, advice ~rot 7),
                             Mul (advice 8, advice ~rot 8)))) ] } ]
    in
    let circuit : F.t Circuit.t =
      { Circuit.k; num_fixed = 1; is_selector = [| true |];
        advice_phases = Array.make 10 0; num_instance = 0; num_challenges = 0;
        gates; lookups = []; copies = []; blinding }
    in
    let rng = Zkml_util.Rng.create 404L in
    let sel = Array.make n F.zero in
    let advice = Array.init 10 (fun _ -> Array.make n F.zero) in
    for row = 0 to content do
      for c = 0 to 9 do
        advice.(c).(row) <- F.of_int (Zkml_util.Rng.int rng 1000)
      done
    done;
    for row = 0 to content - 1 do
      if (not multi_row) || row mod 2 = 0 then begin
        sel.(row) <- F.one;
        let nxt = if multi_row then row + 1 else row in
        advice.(2).(row) <- F.add advice.(0).(row) advice.(1).(nxt);
        advice.(5).(row) <- advice.(3).(row);
        advice.(4).(nxt) <- advice.(3).(row);
        advice.(9).(row) <-
          F.add
            (F.mul advice.(6).(row) advice.(7).(nxt))
            (F.mul advice.(8).(row) advice.(8).(nxt))
      end
    done;
    (circuit, sel, advice)
  in
  List.iter
    (fun (label, multi_row) ->
      let circuit, sel, advice = build ~multi_row in
      let keys = Proto13.keygen params circuit ~fixed:[| sel |] in
      let prng = Zkml_util.Rng.create 7L in
      let proof, prove_s =
        Zkml_util.Timer.time (fun () ->
            Proto13.prove params keys ~instance:[||]
              ~advice:(fun _ -> Array.map Array.copy advice)
              ~rng:prng)
      in
      let ok = Proto13.verify params keys ~instance:[||] proof in
      Printf.printf "%-22s prove %7.3f s   verified %b\n%!" label prove_s ok)
    [ ("single-row", false); ("multi-row (rot +1)", true) ]

(* ------------------------------------------------------------------ *)
(* Table 14: runtime- vs size-optimized *)

let table14 () =
  Printf.printf
    "(paper: e.g. MNIST 2.45s/6560B runtime-opt vs 2.97s/4800B size-opt)\n";
  List.iter
    (fun m ->
      let rt = run_kzg ~objective:Opt.Min_time m in
      let sz = run_kzg ~objective:Opt.Min_size m in
      Printf.printf
        "%-10s runtime-opt %7.2f s / %6d B   size-opt %7.2f s / %6d B\n%!"
        m.Zoo.name rt.Pipe_kzg.prove_s rt.Pipe_kzg.proof_bytes
        sz.Pipe_kzg.prove_s sz.Pipe_kzg.proof_bytes)
    [ Zoo.mnist (); Zoo.vgg16 (); Zoo.resnet18 (); Zoo.twitter (); Zoo.dlrm () ]

(* ------------------------------------------------------------------ *)
(* 9.4 optimizer time savings and 9.5 cost estimation accuracy *)

let kendall_tau xs ys =
  let n = Array.length xs in
  let concordant = ref 0 and discordant = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = compare xs.(i) xs.(j) and b = compare ys.(i) ys.(j) in
      if a * b > 0 then incr concordant
      else if a * b < 0 then incr discordant
    done
  done;
  float_of_int (!concordant - !discordant) /. float_of_int (n * (n - 1) / 2)

let sec9_45 () =
  Printf.printf
    "(paper: optimizer 6.3s vs exhaustive 3622s on MNIST; Kendall tau 0.89 KZG / 0.88 IPA)\n";
  let m = Zoo.mnist () in
  let params = Lazy.force kzg_params in
  let times = Pipe_kzg.calibrated params in
  let qinputs =
    List.map (T.map (Fx.quantize m.Zoo.cfg)) (Zoo.sample_inputs m)
  in
  let exec = Zkml_nn.Quant_exec.run m.Zoo.cfg m.Zoo.graph ~inputs:qinputs in
  let _, optimizer_s =
    Zkml_util.Timer.time (fun () ->
        Opt.optimize ~times ~backend:Zkml_compiler.Costmodel.Kzg
          ~group_bytes:Kzg.G.size_bytes ~field_bytes:Zkml_ff.Fp61.size_bytes
          ~cfg:m.Zoo.cfg m.Zoo.graph exec)
  in
  (* exhaustively prove a sub-grid of physical layouts and compare the
     estimates against the measured proving times *)
  let estimated = ref [] and measured = ref [] in
  let exhaustive_s = ref 0.0 in
  List.iter
    (fun ncols ->
      match
        run_kzg ~specs:[ Spec.default ] ~ncols_min:ncols ~ncols_max:ncols m
      with
      | r ->
          estimated := r.Pipe_kzg.plan.Opt.est_cost :: !estimated;
          measured := r.Pipe_kzg.prove_s :: !measured;
          exhaustive_s := !exhaustive_s +. r.Pipe_kzg.prove_s
      | exception _ -> ())
    (List.init 13 (fun i -> i + 4));
  let est = Array.of_list (List.rev !estimated) in
  let mea = Array.of_list (List.rev !measured) in
  let layouts = List.length Spec.all * 37 in
  let full_exhaustive =
    !exhaustive_s /. float_of_int (max 1 (Array.length mea))
    *. float_of_int layouts
  in
  Printf.printf "optimizer runtime                      %8.2f s\n" optimizer_s;
  Printf.printf "exhaustive benchmarking (13 proved)    %8.2f s\n" !exhaustive_s;
  Printf.printf
    "exhaustive extrapolated to %3d layouts %8.2f s  -> optimizer %.0fx faster\n"
    layouts full_exhaustive
    (full_exhaustive /. optimizer_s);
  let tau = kendall_tau est mea in
  let best_est = ref 0 and best_mea = ref 0 in
  Array.iteri (fun i e -> if e < est.(!best_est) then best_est := i) est;
  Array.iteri (fun i e -> if e < mea.(!best_mea) then best_mea := i) mea;
  Printf.printf
    "cost-estimator Kendall tau over %d layouts: %.2f; top-ranked layout is measured-fastest: %b\n%!"
    (Array.length est) tau (!best_est = !best_mea)

(* ------------------------------------------------------------------ *)
(* par: multicore prover scaling (PR 2). Proves the largest scaled
   bench model at jobs = 1/2/4, checks the proofs are byte-identical,
   and writes BENCH_PR2.json with the prove times and the jobs=4
   speedup. *)

let par () =
  let m = Zoo.resnet18 () in
  let inputs = Zoo.sample_inputs m in
  let params = Lazy.force kzg_params in
  (* calibrate once outside the timed loop *)
  ignore (Pipe_kzg.calibrated params);
  let saved = Zkml_util.Pool.jobs () in
  let job_counts =
    List.filter
      (fun j -> allowed "ZKML_BENCH_JOBS" (string_of_int j))
      [ 1; 2; 4 ]
  in
  if job_counts = [] then failwith "par: ZKML_BENCH_JOBS filtered out all runs";
  let runs =
    List.map
      (fun j ->
        Zkml_util.Pool.set_jobs j;
        let r = Pipe_kzg.run ~cfg:m.Zoo.cfg ~params m.Zoo.graph inputs in
        if not r.Pipe_kzg.verified then
          failwith (Printf.sprintf "par: verification failed at jobs=%d" j);
        let digest =
          Digest.to_hex
            (Digest.string (Pipe_kzg.Proto.proof_to_bytes r.Pipe_kzg.proof))
        in
        Printf.printf
          "jobs=%d  prove %8.2f s  proof %6d B  (k=%d cols=%d)  md5 %s\n%!" j
          r.Pipe_kzg.prove_s r.Pipe_kzg.proof_bytes r.Pipe_kzg.plan.Opt.k
          r.Pipe_kzg.plan.Opt.ncols digest;
        (j, r.Pipe_kzg.prove_s, r.Pipe_kzg.plan.Opt.k,
         r.Pipe_kzg.plan.Opt.ncols, digest))
      job_counts
  in
  Zkml_util.Pool.set_jobs saved;
  let _, t1, k, ncols, d1 = List.hd runs in
  let _, t4, _, _, _ = List.nth runs (List.length runs - 1) in
  let identical =
    List.for_all (fun (_, _, _, _, d) -> String.equal d d1) runs
  in
  let speedup = t1 /. Float.max t4 1e-9 in
  Printf.printf "proofs identical across job counts: %b\n" identical;
  Printf.printf "speedup at jobs=4: %.2fx (on %d hardware core%s)\n%!" speedup
    (Domain.recommended_domain_count ())
    (if Domain.recommended_domain_count () = 1 then "" else "s");
  if not identical then failwith "par: proof bytes differ across job counts";
  let path = bench_path "BENCH_PR2.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\"schema_version\":%d,\"bench\":\"par\",\"model\":\"%s\",\"backend\":\"kzg\",\"k\":%d,\"ncols\":%d,\"cores\":%d,\"runs\":[%s],\"speedup_j4\":%s,\"proof_identical\":%b}\n"
    schema_version m.Zoo.name k ncols
    (Domain.recommended_domain_count ())
    (String.concat ","
       (List.map
          (fun (j, t, _, _, _) ->
            Printf.sprintf "{\"jobs\":%d,\"prove_s\":%s}" j (Obs.json_float t))
          runs))
    (Obs.json_float speedup) identical;
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* batch: serving-layer amortization (PR 4). Proves and verifies a
   batch of 8 inputs through the artifact cache + batch APIs and
   compares against 8 independent single runs: prepare happens once
   (cache), transcripts are streamed per proof, and the 8 PCS final
   checks collapse into one RLC'd check. *)

module Serve = Zkml_serve.Artifacts.Make (Kzg)

let batch () =
  let m = Zoo.mnist () in
  let params = Lazy.force kzg_params in
  let seeds = List.init 8 (fun i -> Int64.of_int (i + 1)) in
  let jobs = List.map (fun s -> (Zoo.sample_inputs ~seed:s m, s)) seeds in
  let entry, status = Serve.prepare ~cfg:m.Zoo.cfg params m.Zoo.graph in
  Printf.printf "artifact cache: %s\n%!"
    (Zkml_serve.Artifacts.status_string status);
  let keys = entry.Serve.e_keys in
  (* 8 independent single proofs *)
  let singles, single_prove_s =
    Zkml_util.Timer.time (fun () ->
        List.map
          (fun (inputs, s) ->
            let w = Serve.witness entry ~cfg:m.Zoo.cfg m.Zoo.graph inputs in
            let proof =
              Serve.Proto.prove params keys ~instance:w.Serve.Pipe.w_instance
                ~advice:(fun _ -> Array.map Array.copy w.Serve.Pipe.w_advice)
                ~rng:(Zkml_util.Rng.create s)
            in
            (w.Serve.Pipe.w_instance, proof))
          jobs)
  in
  let _, single_verify_s =
    Zkml_util.Timer.time (fun () ->
        List.iter
          (fun (instance, p) ->
            if not (Serve.Proto.verify params keys ~instance p) then
              failwith "batch: single verification failed")
          singles)
  in
  (* one batch of 8 through the batch APIs *)
  let batch_proofs, batch_prove_s =
    Zkml_util.Timer.time (fun () ->
        Serve.prove_batch params entry ~cfg:m.Zoo.cfg m.Zoo.graph jobs)
  in
  let b =
    List.map (fun (w, p) -> (w.Serve.Pipe.w_instance, p)) batch_proofs
  in
  let (ok, checks), batch_verify_s =
    Zkml_util.Timer.time (fun () ->
        let ok, report =
          Obs.with_enabled (fun () ->
              Serve.Proto.verify_many params keys ~batch:b)
        in
        (ok, int_of_float (Obs.counter_total report "pcs.final_check")))
  in
  if not ok then failwith "batch: batched verification failed";
  let n = List.length seeds in
  Printf.printf
    "%d x single   prove %7.2f s (%.3f s/proof)   verify %7.4f s (%d final checks)\n"
    n single_prove_s
    (single_prove_s /. float_of_int n)
    single_verify_s n;
  Printf.printf
    "batch of %d   prove %7.2f s (%.3f s/proof)   verify %7.4f s (%d final check%s)\n%!"
    n batch_prove_s
    (batch_prove_s /. float_of_int n)
    batch_verify_s checks
    (if checks = 1 then "" else "s");
  Printf.printf
    "verify amortization: %.2fx wall-clock, %dx fewer final checks\n%!"
    (single_verify_s /. Float.max batch_verify_s 1e-9)
    (n / max 1 checks)

(* ------------------------------------------------------------------ *)
(* quotient: interpreter vs compiled quotient evaluator (PR 5). For
   every zoo model, proves once under ZKML_EVAL=interp and once with
   the compiled program, asserts the proof bytes match, and writes
   BENCH_PR5.json with interp/compiled rows-per-second per model. *)

let quotient () =
  let params = Lazy.force kzg_params in
  let models =
    List.filter
      (fun m -> allowed "ZKML_BENCH_MODELS" m.Zoo.name)
      (Zoo.all ())
  in
  if models = [] then
    failwith "quotient: ZKML_BENCH_MODELS filtered out all models";
  let results =
    List.map
      (fun m ->
        let entry, _ = Serve.prepare ~cfg:m.Zoo.cfg params m.Zoo.graph in
        let keys = entry.Serve.e_keys in
        let w =
          Serve.witness entry ~cfg:m.Zoo.cfg m.Zoo.graph
            (Zoo.sample_inputs ~seed:11L m)
        in
        let prove_with span_name mode =
          Unix.putenv "ZKML_EVAL" mode;
          Fun.protect ~finally:(fun () -> Unix.putenv "ZKML_EVAL" "")
          @@ fun () ->
          let proof, report =
            Obs.with_enabled (fun () ->
                Serve.Proto.prove params keys
                  ~instance:w.Serve.Pipe.w_instance
                  ~advice:(fun _ -> Array.map Array.copy w.Serve.Pipe.w_advice)
                  ~rng:(Zkml_util.Rng.create 11L))
          in
          ( Serve.Proto.proof_to_bytes proof,
            Obs.total_of report span_name,
            Obs.counter_total report "quotient.rows" )
        in
        let b_i, t_i, rows = prove_with "quotient.interp" "interp" in
        let b_c, t_c, _ = prove_with "quotient.compiled" "" in
        if not (String.equal b_i b_c) then
          failwith
            (Printf.sprintf "quotient: proof bytes differ on %s" m.Zoo.name);
        let rs t = rows /. Float.max t 1e-9 in
        Printf.printf
          "%-12s rows %8.0f  interp %7.3f s (%9.0f rows/s)  compiled %7.3f s \
           (%9.0f rows/s)  %5.2fx\n%!"
          m.Zoo.name rows t_i (rs t_i) t_c (rs t_c)
          (t_i /. Float.max t_c 1e-9);
        (m.Zoo.name, rows, t_i, t_c))
      models
  in
  let best =
    List.fold_left
      (fun acc (_, _, t_i, t_c) -> Float.max acc (t_i /. Float.max t_c 1e-9))
      0.0 results
  in
  Printf.printf "best compiled speedup: %.2fx (proofs byte-identical)\n%!" best;
  let path = bench_path "BENCH_PR5.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\"schema_version\":%d,\"bench\":\"quotient\",\"backend\":\"kzg\",\"models\":[%s],\"best_speedup\":%s,\"proofs_identical\":true}\n"
    schema_version
    (String.concat ","
       (List.map
          (fun (name, rows, t_i, t_c) ->
            let rs t = rows /. Float.max t 1e-9 in
            Printf.sprintf
              "{\"model\":\"%s\",\"rows\":%.0f,\"interp_s\":%s,\"compiled_s\":%s,\"interp_rows_per_s\":%s,\"compiled_rows_per_s\":%s,\"speedup\":%s}"
              name rows (Obs.json_float t_i) (Obs.json_float t_c)
              (Obs.json_float (rs t_i))
              (Obs.json_float (rs t_c))
              (Obs.json_float (t_i /. Float.max t_c 1e-9)))
          results))
    (Obs.json_float best);
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* kernels: field / MSM / NTT kernel microbenchmarks (PR 7). Times the
   allocating vs in-place (destination-passing) field arithmetic, the
   Jacobian vs batch-affine+GLV Pippenger on Pallas, and the
   stage-major reference vs cache-blocked NTT — asserting the fast and
   reference paths agree — then writes BENCH_PR7.json for
   bench/regress.ml. ZKML_BENCH_KERNELS=ff,msm,ntt selects groups
   (default: all three; make bench-ff / bench-msm run the filtered
   subsets into a scratch dir). *)

module Field_kernel_rows (F : Zkml_ff.Limb4.S_EXT) = struct
  (* (field, op, iters, total seconds) rows; a sink reference keeps the
     allocating ops from being dead-code-eliminated. *)
  let rows label =
    let rng = Zkml_util.Rng.create 7L in
    let a = F.random rng and b = F.random rng in
    let dst = F.scratch () in
    let sink = ref F.zero in
    let time name iters f =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to iters do
        f ()
      done;
      (label, name, iters, Unix.gettimeofday () -. t0)
    in
    let rows =
      [ time "add" 2_000_000 (fun () -> sink := F.add a b);
        time "mul" 500_000 (fun () -> sink := F.mul a b);
        time "mul_ref" 100_000 (fun () -> sink := F.mul_ref a b);
        time "add_into" 2_000_000 (fun () -> F.add_into dst a b);
        time "mul_into" 500_000 (fun () -> F.mul_into dst a b);
        time "square_into" 500_000 (fun () -> F.square_into dst a)
      ]
    in
    ignore !sink;
    rows
end

module Ntt_kernel_rows (F : Zkml_ff.Field_intf.S) = struct
  let rows label ks =
    let module P = Zkml_poly.Polynomial.Make (F) in
    let rng = Zkml_util.Rng.create 7L in
    List.map
      (fun k ->
        let d = P.Domain.create k in
        let base = P.random rng (1 lsl k) in
        let a = Array.copy base and b = Array.copy base in
        (* repeat small transforms so each timed sample is tens of
           milliseconds — sub-ms samples are too noisy for the x1.75
           regression gate. Re-transforming in place is the same work
           as a fresh input, and both paths get the same rep count so
           the element-wise comparison still holds. *)
        let reps = max 1 (1 lsl (16 - k)) in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to reps do
          P.ntt_reference a d.P.Domain.elements
        done;
        let t_ref = Unix.gettimeofday () -. t0 in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to reps do
          P.ntt_core b d.P.Domain.elements
        done;
        let t_blk = Unix.gettimeofday () -. t0 in
        Array.iteri
          (fun i v ->
            if not (F.equal v b.(i)) then
              failwith "kernels: blocked NTT disagrees with reference")
          a;
        Printf.printf
          "ntt  %-8s k=%-2d x%-4d reference %8.3f s  blocked %8.3f s  %5.2fx\n%!"
          label k reps t_ref t_blk
          (t_ref /. Float.max t_blk 1e-9);
        (label, k, reps, t_ref, t_blk))
      ks
end

let kernels () =
  let module G = Zkml_ec.Pallas in
  let module M = Zkml_ec.Msm.Make (G) in
  let group name = allowed "ZKML_BENCH_KERNELS" name in
  let ff_rows =
    if not (group "ff") then []
    else begin
      let module Fp_rows = Field_kernel_rows (Zkml_ff.Pasta.Fp) in
      let module Fq_rows = Field_kernel_rows (Zkml_ff.Pasta.Fq) in
      let fp61_rows =
        (* Fp61 has no in-place variants (immutable repr); time the
           allocating ops it actually runs in the Sim61 pipeline. *)
        let rng = Zkml_util.Rng.create 7L in
        let a = Zkml_ff.Fp61.random rng and b = Zkml_ff.Fp61.random rng in
        let sink = ref Zkml_ff.Fp61.zero in
        let time name iters f =
          let t0 = Unix.gettimeofday () in
          for _ = 1 to iters do
            f ()
          done;
          ("fp61", name, iters, Unix.gettimeofday () -. t0)
        in
        let rows =
          [ time "add" 20_000_000 (fun () -> sink := Zkml_ff.Fp61.add a b);
            time "mul" 20_000_000 (fun () -> sink := Zkml_ff.Fp61.mul a b)
          ]
        in
        ignore !sink;
        rows
      in
      let rows = Fp_rows.rows "pasta_fp" @ Fq_rows.rows "pasta_fq" @ fp61_rows in
      List.iter
        (fun (field, op, iters, t) ->
          Printf.printf "ff   %-8s %-12s %9.1f ns/op\n%!" field op
            (t *. 1e9 /. float_of_int iters))
        rows;
      rows
    end
  in
  let msm_rows =
    if not (group "msm") then []
    else begin
      let rng = Zkml_util.Rng.create 7L in
      List.map
        (fun n ->
          (* incrementally-built points: MSM cost does not depend on the
             point values, and n full scalar muls would dominate setup *)
          let points = Array.make n (G.random rng) in
          for i = 1 to n - 1 do
            points.(i) <- G.add points.(i - 1) G.generator
          done;
          let scalars = Array.init n (fun _ -> G.Scalar.random rng) in
          let t0 = Unix.gettimeofday () in
          let jac = M.pippenger_jacobian points scalars in
          let t_jac = Unix.gettimeofday () -. t0 in
          let t0 = Unix.gettimeofday () in
          let aff = M.pippenger points scalars in
          let t_aff = Unix.gettimeofday () -. t0 in
          if not (G.equal jac aff) then
            failwith "kernels: affine+GLV MSM disagrees with Jacobian";
          (* GLV doubles the item count, so the window is chosen on 2n *)
          let c = M.window_size_affine (2 * n) in
          Printf.printf
            "msm  n=%-6d c=%-2d jacobian %8.3f s  affine+glv %8.3f s  %5.2fx\n%!"
            n c t_jac t_aff
            (t_jac /. Float.max t_aff 1e-9);
          (n, c, t_jac, t_aff))
        [ 256; 1024; 4096; 16384 ]
    end
  in
  let ntt_rows =
    if not (group "ntt") then []
    else begin
      let module R61 = Ntt_kernel_rows (Zkml_ff.Fp61) in
      let module Rfq = Ntt_kernel_rows (Zkml_ff.Pasta.Fq) in
      R61.rows "fp61" [ 10; 12; 14 ] @ Rfq.rows "pasta_fq" [ 10; 12; 14 ]
    end
  in
  (* Sampled values of the retuned batch-affine window table (on item
     count, i.e. 2x the point count under GLV), recorded so the tuning
     that produced the measurements above is part of the artifact. *)
  let window_table =
    String.concat ","
      (List.map
         (fun n -> Printf.sprintf "{\"items\":%d,\"c\":%d}" n (M.window_size_affine n))
         [ 64; 512; 1024; 8192; 32768; 65536 ])
  in
  let path = bench_path "BENCH_PR7.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\"schema_version\":%d,\"bench\":\"kernels\",\"window_table\":[%s],\"field_ops\":[%s],\"msm\":[%s],\"ntt\":[%s]}\n"
    schema_version window_table
    (String.concat ","
       (List.map
          (fun (field, op, iters, t) ->
            Printf.sprintf
              "{\"field\":\"%s\",\"op\":\"%s\",\"iters\":%d,\"total_s\":%s,\"ns_per_op\":%s,\"mops_per_s\":%s}"
              field op iters (Obs.json_float t)
              (Obs.json_float (t *. 1e9 /. float_of_int iters))
              (Obs.json_float
                 (float_of_int iters /. Float.max t 1e-9 /. 1e6)))
          ff_rows))
    (String.concat ","
       (List.map
          (fun (n, c, t_jac, t_aff) ->
            Printf.sprintf
              "{\"n\":%d,\"c\":%d,\"jacobian_s\":%s,\"affine_glv_s\":%s,\"points_per_s\":%s,\"speedup\":%s}"
              n c (Obs.json_float t_jac) (Obs.json_float t_aff)
              (Obs.json_float (float_of_int n /. Float.max t_aff 1e-9))
              (Obs.json_float (t_jac /. Float.max t_aff 1e-9)))
          msm_rows))
    (String.concat ","
       (List.map
          (fun (field, k, reps, t_ref, t_blk) ->
            Printf.sprintf
              "{\"field\":\"%s\",\"k\":%d,\"reps\":%d,\"reference_s\":%s,\"blocked_s\":%s,\"rows_per_s\":%s,\"speedup\":%s}"
              field k reps (Obs.json_float t_ref) (Obs.json_float t_blk)
              (Obs.json_float
                 (float_of_int (reps * (1 lsl k)) /. Float.max t_blk 1e-9))
              (Obs.json_float (t_ref /. Float.max t_blk 1e-9)))
          ntt_rows));
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* segments: split-and-aggregate proving (PR 10). For each selected
   model, proves the monolithic circuit and the 4-segment split, checks
   the aggregated verdict accepts the segmented proof file, and writes
   BENCH_PR10.json: per model the monolithic and segmented prove walls,
   the aggregate verify wall and the content-row counts. Peak segment
   rows must undercut the monolithic row count — that is the
   memory-shape claim of the split. ZKML_BENCH_MODELS filters the model
   set (default mnist, dlrm, gpt2). *)

module SPF = Zkml_serve.Seg_proof

let segments () =
  let nsegs = 4 in
  let default = [ "mnist"; "dlrm"; "gpt2" ] in
  let models =
    List.filter
      (fun m ->
        List.mem m.Zoo.name default
        && allowed "ZKML_BENCH_MODELS" m.Zoo.name)
      (Zoo.all ())
  in
  if models = [] then
    failwith "segments: ZKML_BENCH_MODELS filtered out all models";
  let kzg_keys = Hashtbl.create 16 and ipa_keys = Hashtbl.create 16 in
  let rows =
    List.map
      (fun m ->
        let mono = run_kzg m in
        if not mono.Pipe_kzg.verified then
          failwith
            (Printf.sprintf "segments: monolithic verification failed on %s"
               m.Zoo.name);
        let p = SPF.prove m Zkml_serve.Backends.Kzg 1234 ~segments:nsegs in
        let sp =
          match SPF.of_string p.SPF.p_text with
          | Ok sp -> sp
          | Error e ->
              failwith
                (Printf.sprintf "segments: re-parse failed on %s: %s"
                   m.Zoo.name (Zkml_util.Err.to_string e))
        in
        let verdict, verify_s =
          Zkml_util.Timer.time (fun () -> SPF.verdict ~kzg_keys ~ipa_keys m sp)
        in
        (match verdict with
        | `Accepted -> ()
        | `Rejected ->
            failwith
              (Printf.sprintf "segments: honest proof rejected on %s"
                 m.Zoo.name)
        | `Malformed e ->
            failwith
              (Printf.sprintf "segments: honest proof malformed on %s: %s"
                 m.Zoo.name (Zkml_util.Err.to_string e)));
        if p.SPF.p_peak_rows >= p.SPF.p_mono_rows then
          failwith
            (Printf.sprintf
               "segments: peak segment rows %d do not undercut monolithic %d \
                on %s"
               p.SPF.p_peak_rows p.SPF.p_mono_rows m.Zoo.name);
        Printf.printf
          "%-12s mono %7.2f s (%5d rows)   %d segs %7.2f s (peak %5d rows, k \
           %s)   verify %7.4f s\n%!"
          m.Zoo.name mono.Pipe_kzg.prove_s p.SPF.p_mono_rows nsegs
          p.SPF.p_prove_s p.SPF.p_peak_rows
          (String.concat "," (List.map string_of_int p.SPF.p_ks))
          verify_s;
        (m.Zoo.name, mono.Pipe_kzg.prove_s, p, verify_s))
      models
  in
  let path = bench_path "BENCH_PR10.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\"schema_version\":%d,\"bench\":\"segments\",\"backend\":\"kzg\",\"segments\":%d,\"models\":[%s]}\n"
    schema_version nsegs
    (String.concat ","
       (List.map
          (fun (name, mono_s, p, verify_s) ->
            Printf.sprintf
              "{\"model\":\"%s\",\"mono_rows\":%d,\"peak_rows\":%d,\"ks\":[%s],\"prove_mono_s\":%s,\"prove_seg_s\":%s,\"verify_seg_s\":%s}"
              name p.SPF.p_mono_rows p.SPF.p_peak_rows
              (String.concat "," (List.map string_of_int p.SPF.p_ks))
              (Obs.json_float mono_s)
              (Obs.json_float p.SPF.p_prove_s)
              (Obs.json_float verify_s))
          rows));
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* ops: Bechamel microbenchmarks of the primitives the cost model uses *)

let ops () =
  let open Bechamel in
  let open Toolkit in
  let module P = Zkml_poly.Polynomial.Make (Zkml_ff.Fp61) in
  let fft k =
    Staged.stage (fun () ->
        let d = P.Domain.create k in
        let a = Array.init (1 lsl k) (fun i -> Zkml_ff.Fp61.of_int i) in
        P.ntt d a)
  in
  let msm k =
    Staged.stage (fun () ->
        let coeffs =
          Array.init (1 lsl k) (fun i -> Zkml_ff.Fp61.of_int (i + 1))
        in
        ignore (Kzg.commit (Lazy.force kzg_params) coeffs))
  in
  let field_mul =
    Staged.stage (fun () ->
        let x = ref (Zkml_ff.Fp61.of_int 3) in
        for _ = 1 to 1000 do
          x := Zkml_ff.Fp61.mul !x !x
        done;
        ignore !x)
  in
  let tests =
    Test.make_grouped ~name:"ops" ~fmt:"%s/%s"
      [ Test.make ~name:"fft-2^10" (fft 10);
        Test.make ~name:"fft-2^12" (fft 12);
        Test.make ~name:"msm-2^10" (msm 10);
        Test.make ~name:"msm-2^12" (msm 12);
        Test.make ~name:"field-mul-x1000" field_mul ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~stabilize:true ~quota:(Time.second 0.5) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some (est :: _) -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, est) -> Printf.printf "%-24s %14.0f ns/run\n" name est)
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)

let sections =
  [ ("table5", "models, parameters and flops (Table 5)", table5);
    ("table6", "end-to-end proving, KZG backend (Table 6)",
     fun () -> table_e2e `Kzg);
    ("table7", "end-to-end proving, IPA backend (Table 7)",
     fun () -> table_e2e `Ipa);
    ("table8", "FP32 vs circuit accuracy (Table 8)", table8);
    ("table9", "comparison to prior-work-style baselines (Table 9)", table9);
    ("table10", "optimizer vs fixed configuration (Table 10)", table10);
    ("table11", "fixed gadget set ablation (Table 11)", table11);
    ("table12", "optimizer pruning ablation (Table 12)", table12);
    ("table13", "single-row vs multi-row constraints (Table 13)", table13);
    ("table14", "runtime- vs size-optimized proofs (Table 14)", table14);
    ("sec9_45", "optimizer savings and cost-model accuracy (9.4/9.5)", sec9_45);
    ("par", "multicore prover scaling and determinism (PR 2)", par);
    ("batch", "batch-of-8 vs 8x single prove/verify (serving layer)", batch);
    ("quotient", "interpreter vs compiled quotient evaluator (PR 5)", quotient);
    ("kernels", "field / MSM / NTT kernel microbenchmarks (PR 7)", kernels);
    ("segments", "split-and-aggregate proving (PR 10)", segments);
    ("ops", "primitive operation microbenchmarks (bechamel)", ops) ]

let () =
  let args =
    match Array.to_list Sys.argv with [] -> [] | _ :: rest -> rest
  in
  let rec parse names = function
    | [] -> List.rev names
    | "--json" :: path :: rest ->
        json_out := Some path;
        parse names rest
    | [ "--json" ] ->
        prerr_endline "bench: --json requires a file argument";
        exit 2
    | s :: rest ->
        if not (List.mem_assoc s (List.map (fun (n, t, f) -> (n, (t, f))) sections))
        then begin
          Printf.eprintf "bench: unknown section %S (have: %s)\n" s
            (String.concat ", " (List.map (fun (n, _, _) -> n) sections));
          exit 2
        end;
        parse (s :: names) rest
  in
  let requested = match parse [] args with [] -> None | l -> Some l in
  List.iter
    (fun (name, title, f) ->
      let run =
        match requested with None -> true | Some names -> List.mem name names
      in
      if run then section name title f)
    sections;
  line ();
  write_json_results ();
  print_endline "bench: all requested sections completed."
